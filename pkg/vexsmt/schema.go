package vexsmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"vexsmt/internal/stats"
)

// SchemaVersion is the version of the JSON results schema this package
// emits. Decoding rejects any other version: the schema is a wire contract,
// and silently reinterpreting a foreign layout is worse than failing.
const SchemaVersion = 1

// Counters is the public mirror of one simulation's raw counters. Field
// meanings follow the paper's evaluation section; every derived metric the
// figures report (IPC, waste, miss rates) recomputes from these.
type Counters struct {
	Cycles       int64 `json:"cycles"`
	Instrs       int64 `json:"instrs"`
	Ops          int64 `json:"ops"`
	IssueSlots   int64 `json:"issue_slots"`
	EmptyCycles  int64 `json:"empty_cycles"`
	MergedCycles int64 `json:"merged_cycles"`
	SplitInstrs  int64 `json:"split_instrs"`

	ICacheAccesses int64 `json:"icache_accesses"`
	ICacheMisses   int64 `json:"icache_misses"`
	DCacheAccesses int64 `json:"dcache_accesses"`
	DCacheMisses   int64 `json:"dcache_misses"`

	FetchStallCycles   int64 `json:"fetch_stall_cycles"`
	MemStallCycles     int64 `json:"mem_stall_cycles"`
	BranchStallCycles  int64 `json:"branch_stall_cycles"`
	MemPortStallCycles int64 `json:"mem_port_stall_cycles"`

	ContextSwitches int64 `json:"context_switches"`
	Respawns        int64 `json:"respawns"`

	// Branch-predictor counters; zero (and omitted from JSON) under the
	// default static front end, which keeps static exports byte-identical
	// to documents produced before the predictor axis existed.
	Branches          int64 `json:"branches,omitempty"`
	BranchMispredicts int64 `json:"branch_mispredicts,omitempty"`
}

func countersFromRun(r *stats.Run) Counters {
	return Counters{
		Cycles:       r.Cycles,
		Instrs:       r.Instrs,
		Ops:          r.Ops,
		IssueSlots:   r.IssueSlots,
		EmptyCycles:  r.EmptyCycles,
		MergedCycles: r.MergedCycles,
		SplitInstrs:  r.SplitInstrs,

		ICacheAccesses: r.ICacheAccesses,
		ICacheMisses:   r.ICacheMisses,
		DCacheAccesses: r.DCacheAccesses,
		DCacheMisses:   r.DCacheMisses,

		FetchStallCycles:   r.FetchStallCycles,
		MemStallCycles:     r.MemStallCycles,
		BranchStallCycles:  r.BranchStallCycles,
		MemPortStallCycles: r.MemPortStallCycles,

		ContextSwitches: r.ContextSwitches,
		Respawns:        r.Respawns,

		Branches:          r.Branches,
		BranchMispredicts: r.BranchMispredicts,
	}
}

// CellResult is one completed grid cell: the workload/technique/thread
// identity, the deterministic seed the cell ran under, and its counters.
// Err is set instead of Counters when the cell failed.
//
// Cached is a transport-level hint — the result was recalled from a
// content-addressed cache rather than simulated — and is not part of the
// result's identity: cached and simulated results are bit-identical by
// contract, so Canonicalize and Merge clear the flag before results are
// compared, deduplicated or exported.
type CellResult struct {
	Mix       string `json:"mix"`
	Technique string `json:"technique"`
	Threads   int    `json:"threads"`
	// Predictor carries the internal canonical spelling: "" for the
	// default static front end (omitted from JSON, so static documents
	// match pre-predictor ones byte for byte), else the model name.
	Predictor string `json:"predictor,omitempty"`
	// Workload carries the full "name@sha256" content reference of a
	// trace-backed cell; "" (omitted from JSON) marks a synthetic-mix
	// cell, so mix-only documents match pre-workload ones byte for byte.
	// Workload cells leave Mix empty.
	Workload string   `json:"workload,omitempty"`
	Seed     uint64   `json:"seed"`
	IPC      float64  `json:"ipc"`
	Counters Counters `json:"counters"`
	Cached   bool     `json:"cached,omitempty"`
	Err      string   `json:"error,omitempty"`
}

// SpeedupPct returns the percentage IPC speedup of tech over base, the
// arithmetic behind the paper's Figures 14 and 15. Cells with a zero-IPC
// base yield 0.
func SpeedupPct(tech, base CellResult) float64 {
	if base.IPC == 0 {
		return 0
	}
	return (tech.IPC/base.IPC - 1) * 100
}

// RunMeta records what produced a ResultSet: schema version and the
// reproduction triple (seed, scale, parallelism). Seed and scale pin the
// exact bits; parallelism is informational only — it never changes results.
// Techniques is the comma-joined technique set of the producing service
// (Figure 16 order), so a merger can refuse to combine results from
// services that disagree about what the grid even is. It is kept a single
// string so RunMeta stays comparable.
type RunMeta struct {
	SchemaVersion int    `json:"schema_version"`
	Seed          uint64 `json:"seed"`
	Scale         int64  `json:"scale"`
	Parallelism   int    `json:"parallelism"`
	Techniques    string `json:"techniques,omitempty"`
}

// ResultSet is the batch results document: metadata plus cells sorted by
// (mix, technique, threads) so equal runs encode byte-identically.
type ResultSet struct {
	Meta  RunMeta      `json:"meta"`
	Cells []CellResult `json:"cells"`
}

// Sort orders the cells by (mix, workload, technique, threads, predictor),
// the canonical encoding order; the static predictor's and synthetic
// workload's empty spellings sort first, so pre-axis sets keep their
// historical order exactly. Collect returns sorted sets already; producers
// that accumulate cells in completion order (e.g. a streaming server) call
// this before encoding.
func (rs *ResultSet) Sort() {
	sort.Slice(rs.Cells, func(i, j int) bool {
		a, b := rs.Cells[i], rs.Cells[j]
		if a.Mix != b.Mix {
			return a.Mix < b.Mix
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Technique != b.Technique {
			return a.Technique < b.Technique
		}
		if a.Threads != b.Threads {
			return a.Threads < b.Threads
		}
		return a.Predictor < b.Predictor
	})
}

// Canonicalize rewrites rs into its canonical form: cells in (mix,
// technique, threads) order, the schema version stamped, and the
// informational fields — parallelism and the per-cell Cached hints —
// zeroed. Two runs of the same plan, seed and scale encode byte-
// identically after Canonicalize no matter how many processes, worker
// pools or cache hits produced them — this is the form distributed
// results are diffed in, and it is what makes a warm-cache export
// byte-identical to a cold one.
func (rs *ResultSet) Canonicalize() {
	rs.Meta.SchemaVersion = SchemaVersion
	rs.Meta.Parallelism = 0
	for i := range rs.Cells {
		rs.Cells[i].Cached = false
	}
	rs.Sort()
}

// Merge combines rs and others into a new canonical ResultSet without
// mutating its inputs. Sets must agree on schema version, seed, scale and
// technique set — a merge across any of those is a merge across different
// experiments, and is rejected. A cell appearing in more than one set is
// deduplicated when the copies are bit-identical and is a conflict error
// otherwise: per-cell seeds make equal cells inevitable, so a mismatch
// means one producer is broken. The merged set is Canonicalized, so
// merging disjoint shards of a plan yields exactly the bytes a
// single-process Collect of that plan canonicalizes to.
func (rs *ResultSet) Merge(others ...*ResultSet) (*ResultSet, error) {
	merged := &ResultSet{Meta: rs.Meta}
	type cellKey struct {
		mix, technique string
		threads        int
		predictor      string
		workload       string
	}
	seen := make(map[cellKey]CellResult, len(rs.Cells))
	add := func(set *ResultSet) error {
		if set.Meta.SchemaVersion != rs.Meta.SchemaVersion {
			return fmt.Errorf("vexsmt: merge: schema version %d vs %d",
				set.Meta.SchemaVersion, rs.Meta.SchemaVersion)
		}
		if set.Meta.Seed != rs.Meta.Seed {
			return fmt.Errorf("vexsmt: merge: seed %d vs %d", set.Meta.Seed, rs.Meta.Seed)
		}
		if set.Meta.Scale != rs.Meta.Scale {
			return fmt.Errorf("vexsmt: merge: scale 1/%d vs 1/%d", set.Meta.Scale, rs.Meta.Scale)
		}
		if set.Meta.Techniques != rs.Meta.Techniques {
			return fmt.Errorf("vexsmt: merge: technique set %q vs %q",
				set.Meta.Techniques, rs.Meta.Techniques)
		}
		for _, c := range set.Cells {
			// The Cached hint is transport metadata, not result identity: a
			// cell recalled from cache on one backend and simulated on
			// another must deduplicate, not conflict.
			c.Cached = false
			k := cellKey{c.Mix, c.Technique, c.Threads, c.Predictor, c.Workload}
			if prev, ok := seen[k]; ok {
				if prev != c {
					return fmt.Errorf("vexsmt: merge: conflicting duplicates of cell %s",
						cellName(c))
				}
				continue
			}
			seen[k] = c
			merged.Cells = append(merged.Cells, c)
		}
		return nil
	}
	if err := add(rs); err != nil {
		return nil, err
	}
	for _, set := range others {
		if err := add(set); err != nil {
			return nil, err
		}
	}
	merged.Canonicalize()
	return merged, nil
}

// cellName renders a cell's identity for error messages, appending the
// predictor only when it is a modeled one. Workload cells show the trace
// reference where mix cells show their label.
func cellName(c CellResult) string {
	label := c.Mix
	if c.Workload != "" {
		label = c.Workload
	}
	name := fmt.Sprintf("%s/%s/%dT", label, c.Technique, c.Threads)
	if c.Predictor != "" {
		name += "/" + c.Predictor
	}
	return name
}

// EncodeResults writes rs as schema-versioned JSON. The stored schema
// version is forced to SchemaVersion regardless of what rs carries.
func EncodeResults(w io.Writer, rs *ResultSet) error {
	rs.Meta.SchemaVersion = SchemaVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// EncodeToFile canonicalizes rs (see Canonicalize) and writes it to path
// as schema-versioned JSON, the shared export path of paperbench and
// vexsmtctl: any two exports of the same experiment diff clean no matter
// which tool or how many shards produced them.
func EncodeToFile(path string, rs *ResultSet) error {
	rs.Canonicalize()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeResults(f, rs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeResults parses a schema-versioned JSON results document, rejecting
// any schema version other than SchemaVersion.
func DecodeResults(r io.Reader) (*ResultSet, error) {
	var rs ResultSet
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rs); err != nil {
		return nil, fmt.Errorf("vexsmt: decode results: %w", err)
	}
	if rs.Meta.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("vexsmt: results schema version %d, want %d",
			rs.Meta.SchemaVersion, SchemaVersion)
	}
	return &rs, nil
}

// Fig13Row is one benchmark of the paper's Figure 13(a) characterization:
// measured and paper-reported IPC with real (IPCr) and perfect (IPCp)
// memory.
type Fig13Row struct {
	Name      string  `json:"name"`
	Class     string  `json:"class"` // "l", "m" or "h" ILP class
	PaperIPCr float64 `json:"paper_ipcr"`
	PaperIPCp float64 `json:"paper_ipcp"`
	IPCr      float64 `json:"ipcr"`
	IPCp      float64 `json:"ipcp"`
}

// FigureSeries is one bar group of Figures 14/15: per-workload speedup of
// a technique over its baseline at one thread count.
type FigureSeries struct {
	Label     string    `json:"label"`
	Technique string    `json:"technique"`
	Baseline  string    `json:"baseline"`
	Threads   int       `json:"threads"`
	Workloads []string  `json:"workloads"`
	Pct       []float64 `json:"pct"`
	Avg       float64   `json:"avg"`
}

// IPCPoint is one bar of Figure 16: a technique's IPC averaged over the
// nine workloads at one thread count.
type IPCPoint struct {
	Technique string  `json:"technique"`
	Threads   int     `json:"threads"`
	IPC       float64 `json:"ipc"`
}

// ScalePoint is one point of a thread-count scaling study.
type ScalePoint struct {
	Threads int     `json:"threads"`
	IPC     float64 `json:"ipc"`
}

package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt/cache"
)

// waitTerminal polls a plan until it leaves "running".
func waitTerminal(t *testing.T, ts *httptest.Server, id string) resultsResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		res := getResults(t, ts, id)
		if res.Status != "running" {
			return res
		}
		if time.Now().After(deadline) {
			t.Fatalf("plan %s still running after 30s", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerCacheWarmPlansAndHealthz: two submissions of the same cells
// share the server's cache (the second is all hits, visible on /healthz),
// a cache=off submission bypasses it, and a bogus cache value is a 400.
func TestServerCacheWarmPlansAndHealthz(t *testing.T) {
	mem := cache.NewMemory(0)
	ts := httptest.NewServer(New(20000, 1, 2, WithCache(mem)).Handler())
	defer ts.Close()

	const body = `{"cells":[
		{"mix":"mmhh","technique":"CSMT","threads":4},
		{"mix":"mmhh","technique":"CCSI AS","threads":4}]}`

	cold := waitTerminal(t, ts, postPlan(t, ts, body))
	if cold.Status != "done" {
		t.Fatalf("cold plan %q", cold.Status)
	}
	if st := mem.Stats(); st.Puts != 2 || st.Hits != 0 {
		t.Fatalf("cold cache stats %+v", st)
	}
	for _, c := range cold.Results.Cells {
		if c.Cached {
			t.Fatalf("cold cell flagged cached: %+v", c)
		}
	}

	warm := waitTerminal(t, ts, postPlan(t, ts, body))
	if warm.Status != "done" {
		t.Fatalf("warm plan %q", warm.Status)
	}
	if st := mem.Stats(); st.Hits != 2 {
		t.Fatalf("warm cache stats %+v, want 2 hits", st)
	}
	for i, c := range warm.Results.Cells {
		if !c.Cached {
			t.Fatalf("warm cell not flagged cached: %+v", c)
		}
		// Byte-level identity is covered by the property tests; here the
		// structural fields must agree exactly.
		w := cold.Results.Cells[i]
		c.Cached = false
		if c != w {
			t.Fatalf("warm cell differs from cold:\ncold: %+v\nwarm: %+v", w, c)
		}
	}

	// cache=off bypasses the shared cache entirely.
	before := mem.Stats()
	off := waitTerminal(t, ts, postPlan(t, ts, `{"cache":"off","cells":[
		{"mix":"mmhh","technique":"CSMT","threads":4}]}`))
	if off.Status != "done" {
		t.Fatalf("cache=off plan %q", off.Status)
	}
	if after := mem.Stats(); after != before {
		t.Fatalf("cache=off plan touched the cache: %+v -> %+v", before, after)
	}

	// /healthz surfaces the cache counters.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Cache struct {
			Enabled bool  `json:"enabled"`
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Puts    int64 `json:"puts"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.Cache.Enabled || hz.Cache.Hits != 2 || hz.Cache.Puts != 2 {
		t.Fatalf("healthz cache %+v", hz.Cache)
	}

	// An unknown cache mode is a 400, not a silent default.
	badResp, err := http.Post(ts.URL+"/v1/plans", "application/json",
		strings.NewReader(`{"cache":"sideways","figures":["14"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cache=sideways: status %d, want 400", badResp.StatusCode)
	}
}

// TestCapacityScalesWithParallelism: a daemon built for 16-way simulation
// must admit (and advertise) 16 concurrent plans, or a coordinator's
// one-cell submissions would idle most of its cores.
func TestCapacityScalesWithParallelism(t *testing.T) {
	ts := httptest.NewServer(New(20000, 1, 16).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Capacity int `json:"capacity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Capacity != 16 {
		t.Fatalf("capacity %d for parallelism 16, want 16", hz.Capacity)
	}
}

// TestServerWithoutCacheHealthz: a cache-less server reports enabled:false
// and still accepts cache=on submissions (they just run uncached).
func TestServerWithoutCacheHealthz(t *testing.T) {
	ts := testServer()
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Cache struct {
			Enabled bool `json:"enabled"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Cache.Enabled {
		t.Fatal("cache reported enabled on a cache-less server")
	}
	res := waitTerminal(t, ts, postPlan(t, ts, `{"cache":"on","cells":[
		{"mix":"llll","technique":"SMT","threads":2}]}`))
	if res.Status != "done" {
		t.Fatalf("cache=on plan on cache-less server: %q", res.Status)
	}
}

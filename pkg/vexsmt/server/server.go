// Package server implements the vexsmtd HTTP control plane as an
// importable library, so cmd/vexsmtd stays a thin shell and the shard
// coordinator's HTTP backend can be tested against the real /v1 protocol
// with net/http/httptest. It is deliberately built only on pkg/vexsmt —
// the server never reaches into internal packages.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"vexsmt/pkg/vexsmt"
)

// Server exposes the public vexsmt API over HTTP/JSON. It is deliberately
// a thin shell: every simulation capability it offers comes from
// pkg/vexsmt — the server never reaches into internal packages.
//
//	POST   /v1/plans            submit a plan; returns {"id": ...}
//	GET    /v1/plans            list submitted plans
//	GET    /v1/results?id=ID    snapshot: meta, status, progress, cells
//	GET    /v1/results?id=ID&stream=1
//	                            NDJSON: one CellResult per line as cells
//	                            complete, then a final status line
//	DELETE /v1/plans?id=ID      cancel a running plan
//	GET    /healthz             capacity/running/defaults/cache stats
type Server struct {
	defaults serverDefaults // server-level default scale/seed/parallelism
	cache    vexsmt.CellCache

	mu   sync.Mutex
	jobs map[string]*job
	next int
}

// planRequest is the POST /v1/plans body: the plan itself plus per-plan
// overrides of the server's simulation defaults. Overrides are pointers
// so that explicit zero values (notably seed 0) are distinguishable from
// absent fields instead of silently falling back to the defaults. Cache
// is "", "on" (use the server's result cache, if configured) or "off"
// (bypass it for this plan) — anything else is a 400.
type planRequest struct {
	vexsmt.Plan
	Scale       *int64  `json:"scale,omitempty"`
	Seed        *uint64 `json:"seed,omitempty"`
	Parallelism *int    `json:"parallelism,omitempty"`
	Cache       string  `json:"cache,omitempty"`
}

// job is one submitted plan: a service, the cells streamed so far, and the
// terminal state. Mutable state is guarded by mu; done closes when the
// stream drains.
type job struct {
	id      string
	num     int // submission order, drives oldest-first eviction
	meta    vexsmt.RunMeta
	total   int
	weight  int // simulation workers the plan can occupy (admission unit)
	created time.Time
	cancel  context.CancelFunc
	done    chan struct{}

	mu     sync.Mutex
	cells  []vexsmt.CellResult
	failed string // first cell error, if any
	status string // "running", "done", "failed", "cancelled"
}

// serverDefaults are the simulation parameters a plan gets when its
// request leaves them unset.
type serverDefaults struct {
	scale       int64
	seed        uint64
	parallelism int
}

// Option configures a Server at construction.
type Option func(*Server)

// WithCache attaches a content-addressed result cache shared by every
// plan the server runs (unless a submission opts out with cache=off).
// Cache statistics surface on /healthz.
func WithCache(c vexsmt.CellCache) Option {
	return func(s *Server) { s.cache = c }
}

// New builds a server whose jobs default to the given scale, seed and
// parallelism.
func New(scale int64, seed uint64, parallelism int, opts ...Option) *Server {
	s := &Server{
		defaults: serverDefaults{scale: scale, seed: seed, parallelism: parallelism},
		jobs:     make(map[string]*job),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plans", s.handlePlans)
	mux.HandleFunc("/v1/results", s.handleResults)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleHealthz reports liveness plus the numbers a shard coordinator
// needs for placement and failover: how many more plans this server will
// admit (capacity vs running) and the simulation defaults it applies to
// requests that don't override them.
// handleHealthz's "running" is the committed simulation-worker weight,
// so a coordinator's capacity-running arithmetic yields free worker
// slots (for one-cell plans, weight and plan count coincide).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running := s.runningWeightLocked()
	s.mu.Unlock()
	body := map[string]any{
		"ok":             true,
		"capacity":       s.capacity(),
		"running":        running,
		"scale":          s.defaults.scale,
		"seed":           s.defaults.seed,
		"schema_version": vexsmt.SchemaVersion,
	}
	cacheInfo := map[string]any{"enabled": s.cache != nil}
	if s.cache != nil {
		st := s.cache.Stats()
		cacheInfo["hits"] = st.Hits
		cacheInfo["misses"] = st.Misses
		cacheInfo["puts"] = st.Puts
		cacheInfo["errors"] = st.Errors
	}
	body["cache"] = cacheInfo
	writeJSON(w, http.StatusOK, body)
}

// CancelJobs cancels every job and waits for their streams to drain — the
// server half of graceful shutdown. Jobs stay registered (terminal, e.g.
// "cancelled") so watchers attached to an NDJSON stream receive a final
// status line instead of a dropped connection; evicting them is left to
// the normal retention policy.
func (s *Server) CancelJobs() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	for _, j := range jobs {
		<-j.done
	}
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submitPlan(w, r)
	case http.MethodGet:
		s.listPlans(w)
	case http.MethodDelete:
		s.cancelPlan(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use POST, GET or DELETE")
	}
}

// submitPlan validates the request, resolves the plan eagerly (so bad
// plans fail with 400, not asynchronously), and starts streaming.
func (s *Server) submitPlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad plan: %v", err)
		return
	}
	// Present overrides — including explicit zeros — go through the option
	// validators, so an invalid value (zero or negative scale, zero
	// parallelism) is a 400, never a silent fallback to the defaults.
	scale, seed, parallelism := s.defaults.scale, s.defaults.seed, s.defaults.parallelism
	if req.Scale != nil {
		scale = *req.Scale
	}
	if req.Seed != nil {
		seed = *req.Seed
	}
	if req.Parallelism != nil {
		parallelism = *req.Parallelism
	}
	opts := []vexsmt.Option{
		vexsmt.WithScale(scale),
		vexsmt.WithSeed(seed),
		vexsmt.WithParallelism(parallelism),
	}
	switch req.Cache {
	case "", "on":
		if s.cache != nil {
			opts = append(opts, vexsmt.WithCache(s.cache))
		}
	case "off":
		// The plan simulates everything afresh and stores nothing.
	default:
		httpError(w, http.StatusBadRequest, "bad cache %q: want on or off", req.Cache)
		return
	}
	svc, err := vexsmt.New(opts...)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	total, err := svc.PlanSize(req.Plan)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	ch, err := svc.Stream(ctx, req.Plan)
	if err != nil {
		cancel()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission is weighted by worker demand, not plan count: a one-cell
	// plan (the cell-scheduling coordinator's submission pattern) occupies
	// one simulation worker, so a big daemon can run capacity() of them at
	// once, while a full-grid plan's own worker pool is charged in full —
	// the old flat four-plan cap let four grid plans oversubscribe every
	// core 4x. A single plan wider than the whole capacity is clamped so
	// it can still run alone.
	weight := svc.Parallelism()
	if total < weight {
		weight = total
	}
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	cap := s.capacity()
	if weight > cap {
		weight = cap
	}
	if used := s.runningWeightLocked(); used+weight > cap {
		s.mu.Unlock()
		cancel()
		httpError(w, http.StatusServiceUnavailable, "at capacity (%d/%d simulation workers committed); retry later",
			used, cap)
		return
	}
	s.next++
	j := &job{
		id:      "plan-" + strconv.Itoa(s.next),
		num:     s.next,
		meta:    svc.Meta(),
		total:   total,
		weight:  weight,
		created: time.Now(),
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  "running",
	}
	s.jobs[j.id] = j
	s.evictTerminalLocked()
	s.mu.Unlock()

	go j.consume(ctx, ch)

	// The id also travels as a header so a client whose body read fails
	// (connection trouble mid-response) can still DELETE the plan instead
	// of orphaning a running job.
	w.Header().Set("X-Vexsmt-Plan-Id", j.id)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":    j.id,
		"cells": total,
		"meta":  j.meta,
	})
}

// consume drains the stream into the job, recording the terminal state.
func (j *job) consume(ctx context.Context, ch <-chan vexsmt.CellResult) {
	defer close(j.done)
	defer j.cancel()
	for cell := range ch {
		if cell.Err != "" && ctx.Err() != nil {
			// Cancellation abort, not a simulation failure: the cell never
			// completed (and is un-memoized), so it must not inflate the
			// completed count or masquerade as the job's error.
			continue
		}
		j.mu.Lock()
		j.cells = append(j.cells, cell)
		if cell.Err != "" && j.failed == "" {
			j.failed = fmt.Sprintf("%s/%s/%dT: %s", cell.Mix, cell.Technique, cell.Threads, cell.Err)
		}
		j.mu.Unlock()
	}
	j.mu.Lock()
	switch {
	case ctx.Err() != nil:
		j.status = "cancelled"
	case j.failed != "":
		j.status = "failed"
	default:
		j.status = "done"
	}
	j.mu.Unlock()
}

// snapshot returns the job's current progress and a copy of the cells
// accumulated so far (from offset on).
func (j *job) snapshot(offset int) (status, failed string, total int, cells []vexsmt.CellResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < len(j.cells) {
		cells = append(cells, j.cells[offset:]...)
	}
	return j.status, j.failed, j.total, cells
}

// progress reports status and counts without copying the cell slice —
// the cheap accessor for listings and polling.
func (j *job) progress() (status string, completed, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, len(j.cells), j.total
}

func (s *Server) listPlans(w http.ResponseWriter) {
	s.mu.Lock()
	out := make([]map[string]any, 0, len(s.jobs))
	for _, j := range s.jobs {
		status, completed, total := j.progress()
		out = append(out, map[string]any{
			"id": j.id, "status": status,
			"completed": completed, "cells": total,
			"created": j.created.UTC().Format(time.RFC3339),
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i]["id"].(string) < out[k]["id"].(string) })
	writeJSON(w, http.StatusOK, map[string]any{"plans": out})
}

// cancelPlan cancels the job, waits for its stream to drain, and evicts
// it — DELETE is both cancel and cleanup, so completed jobs' results do
// not accumulate in the server forever.
func (s *Server) cancelPlan(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	j, ok := s.job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown plan")
		return
	}
	j.cancel()
	<-j.done
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
	status, completed, _ := j.progress()
	writeJSON(w, http.StatusOK, map[string]any{
		"id": j.id, "status": status, "completed": completed,
	})
}

// maxRetainedJobs bounds server memory: beyond this many jobs, the oldest
// terminal (done/failed/cancelled) ones are evicted with their results.
// Running jobs are never evicted — they bound themselves by finishing.
const maxRetainedJobs = 64

// maxRunningJobs is the floor on the admission budget, so small daemons
// (parallelism below 4) still overlap a few plans.
const maxRunningJobs = 4

// capacity is the server's simulation-worker budget, advertised on
// /healthz and charged per plan at admission (see submitPlan): at least
// maxRunningJobs, and at least the default simulation parallelism — the
// cell-scheduling coordinator submits one-cell plans (weight 1), and a
// four-plan budget would idle all but four cores of a big daemon, while
// unbounded admission would oversubscribe the CPU and pin every partial
// result in memory.
func (s *Server) capacity() int {
	if s.defaults.parallelism > maxRunningJobs {
		return s.defaults.parallelism
	}
	return maxRunningJobs
}

// runningWeightLocked sums the admission weight of jobs still
// simulating. Caller holds s.mu.
func (s *Server) runningWeightLocked() int {
	n := 0
	for _, j := range s.jobs {
		if status, _, _ := j.progress(); status == "running" {
			n += j.weight
		}
	}
	return n
}

// evictTerminalLocked ages out the oldest terminal jobs while the registry
// exceeds maxRetainedJobs. Caller holds s.mu.
func (s *Server) evictTerminalLocked() {
	for len(s.jobs) > maxRetainedJobs {
		var oldest *job
		for _, j := range s.jobs {
			if status, _, _ := j.progress(); status == "running" {
				continue
			}
			if oldest == nil || j.num < oldest.num {
				oldest = j
			}
		}
		if oldest == nil {
			return // everything still running; nothing evictable
		}
		delete(s.jobs, oldest.id)
	}
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	j, ok := s.job(r.URL.Query().Get("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown plan")
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamResults(w, r, j)
		return
	}
	status, failed, total, cells := j.snapshot(0)
	// The embedded ResultSet keeps the schema contract a downstream merger
	// relies on: successful cells only (failures are reported via status +
	// error, exactly as Collect fails instead of returning a partial set),
	// in the canonical sorted order so equal plans return byte-identical
	// results documents.
	rs := vexsmt.ResultSet{Meta: j.meta}
	for _, c := range cells {
		if c.Err == "" {
			rs.Cells = append(rs.Cells, c)
		}
	}
	rs.Sort()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        j.id,
		"status":    status,
		"error":     failed,
		"completed": len(cells),
		"cells":     total,
		"results":   rs,
	})
}

// streamResults writes NDJSON: every completed cell (including those that
// finished before the watcher connected), live cells as they complete, and
// one terminal status object. Polling the job avoids subscription
// plumbing; 100ms granularity is invisible next to cell runtimes.
func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the status line and headers now: cells can take minutes, and
		// a watcher must be able to tell "running" from "dead" immediately.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	offset := 0
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		status, failed, total, cells := j.snapshot(offset)
		for _, cell := range cells {
			if err := enc.Encode(cell); err != nil {
				return // watcher went away
			}
		}
		offset += len(cells)
		if flusher != nil && len(cells) > 0 {
			flusher.Flush()
		}
		if status != "running" {
			_ = enc.Encode(map[string]any{
				"status": status, "error": failed,
				"completed": offset, "cells": total,
			})
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			// Loop once more to drain the tail and emit the status line.
		case <-tick.C:
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Package server implements the vexsmtd HTTP control plane as an
// importable library, so cmd/vexsmtd stays a thin shell and the shard
// coordinator's HTTP backend can be tested against the real /v1 protocol
// with net/http/httptest. It is deliberately built only on pkg/vexsmt —
// the server never reaches into internal packages.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/resilience"
)

// Server exposes the public vexsmt API over HTTP/JSON. It is deliberately
// a thin shell: every simulation capability it offers comes from
// pkg/vexsmt — the server never reaches into internal packages.
//
//	POST   /v1/plans            submit a plan; returns {"id": ...}
//	GET    /v1/plans            list submitted plans
//	GET    /v1/results?id=ID    snapshot: meta, status, progress, cells
//	GET    /v1/results?id=ID&stream=1
//	                            NDJSON: one CellResult per line as cells
//	                            complete, then a final status line
//	DELETE /v1/plans?id=ID      cancel a running plan
//	GET    /v1/cache/{key}      serve one local result-cache entry (peer fill)
//	POST   /v1/prefetch         warm the local cache with upcoming cells
//	GET    /healthz             capacity/running/defaults/cache stats
//
// With WithFleet, a registry handler (pkg/vexsmt/fleet) is additionally
// mounted under /v1/fleet/, so any daemon can host the fleet's membership.
type Server struct {
	defaults serverDefaults // server-level default scale/seed/parallelism
	cache    vexsmt.CellCache
	fleet    http.Handler // optional registry routes under /v1/fleet/
	started  time.Time

	workloadDir string    // trace corpus directory (WithWorkloads); "" = synthetic only
	wlOnce      sync.Once // corpus loads once per server, on first need
	wlRefs      []string  // sorted "name@sha256" references of the loaded corpus
	wlErr       error

	simulations atomic.Int64 // simulator runs performed by finished jobs

	mu       sync.Mutex
	jobs     map[string]*job
	next     int
	prefetch map[int]*prefetchJob
	nextPre  int
}

// prefetchJob is one background cache-warming run.
type prefetchJob struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// planRequest is the POST /v1/plans body: the plan itself plus per-plan
// overrides of the server's simulation defaults. Overrides are pointers
// so that explicit zero values (notably seed 0) are distinguishable from
// absent fields instead of silently falling back to the defaults. Cache
// is "", "on" (use the server's result cache, if configured) or "off"
// (bypass it for this plan) — anything else is a 400.
type planRequest struct {
	vexsmt.Plan
	Scale       *int64  `json:"scale,omitempty"`
	Seed        *uint64 `json:"seed,omitempty"`
	Parallelism *int    `json:"parallelism,omitempty"`
	Cache       string  `json:"cache,omitempty"`
}

// job is one submitted plan: a service, the cells streamed so far, and the
// terminal state. Mutable state is guarded by mu; done closes when the
// stream drains.
type job struct {
	id         string
	num        int // submission order, drives oldest-first eviction
	meta       vexsmt.RunMeta
	total      int
	predictors string // sorted distinct predictor axis of the resolved plan
	workloads  string // sorted distinct workload axis of the resolved plan
	weight     int    // simulation workers the plan can occupy (admission unit)
	created    time.Time
	cancel     context.CancelFunc
	done       chan struct{}
	finished   func() // runs once when the stream drains (simulation accounting)

	mu     sync.Mutex
	cells  []vexsmt.CellResult
	failed string // first cell error, if any
	status string // "running", "done", "failed", "cancelled"
}

// serverDefaults are the simulation parameters a plan gets when its
// request leaves them unset.
type serverDefaults struct {
	scale       int64
	seed        uint64
	parallelism int
}

// Option configures a Server at construction.
type Option func(*Server)

// WithCache attaches a content-addressed result cache shared by every
// plan the server runs (unless a submission opts out with cache=off).
// Cache statistics surface on /healthz. The cache may be a peer-fill
// wrapper (pkg/vexsmt/cache.WithPeerFill); /v1/cache then serves from the
// wrapped local tier only, so peer requests never recurse back into the
// fleet.
func WithCache(c vexsmt.CellCache) Option {
	return func(s *Server) { s.cache = c }
}

// WithFleet mounts h under /v1/fleet/ — pass pkg/vexsmt/fleet's Handler to
// make this daemon the fleet's registry host. The handler is plain
// http.Handler so the server package needs no fleet dependency.
func WithFleet(h http.Handler) Option {
	return func(s *Server) { s.fleet = h }
}

// WithWorkloads points the server at a trace corpus directory (.vxt /
// .vex; see internal/wstore). The corpus loads once — content-addressed,
// decoded a single time per process — on first need, and every plan the
// server admits can then name its workloads (bare name or "name@sha256"
// reference); unknown names fail admission with 400. The loaded
// references are listed on /healthz so a coordinator can route
// trace-backed cells only to daemons that hold the bytes.
func WithWorkloads(dir string) Option {
	return func(s *Server) { s.workloadDir = dir }
}

// workloads returns the loaded corpus references, loading the directory
// on first call. Without WithWorkloads it returns (nil, nil).
func (s *Server) workloads() ([]string, error) {
	if s.workloadDir == "" {
		return nil, nil
	}
	s.wlOnce.Do(func() {
		s.wlRefs, s.wlErr = vexsmt.LoadWorkloads(s.workloadDir)
	})
	return s.wlRefs, s.wlErr
}

// New builds a server whose jobs default to the given scale, seed and
// parallelism.
func New(scale int64, seed uint64, parallelism int, opts ...Option) *Server {
	s := &Server{
		defaults: serverDefaults{scale: scale, seed: seed, parallelism: parallelism},
		started:  time.Now(),
		jobs:     make(map[string]*job),
		prefetch: make(map[int]*prefetchJob),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plans", s.handlePlans)
	mux.HandleFunc("/v1/results", s.handleResults)
	mux.HandleFunc("/v1/cache/", s.handleCacheGet)
	mux.HandleFunc("/v1/prefetch", s.handlePrefetch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.fleet != nil {
		mux.Handle("/v1/fleet/", s.fleet)
	}
	return mux
}

// localCacheUnwrapper is implemented by peer-fill wrappers: Local returns
// the store this daemon actually owns. /v1/cache serves only that tier —
// answering peer requests through the wrapper would bounce a fleet-wide
// missing key between cold daemons forever.
type localCacheUnwrapper interface {
	Local() vexsmt.CellCache
}

// exportCache returns the cache tier /v1/cache serves from.
func (s *Server) exportCache() vexsmt.CellCache {
	if u, ok := s.cache.(localCacheUnwrapper); ok {
		return u.Local()
	}
	return s.cache
}

// Stats is a point-in-time snapshot of the server's fleet signals: the
// admission numbers a coordinator places by, uptime, cumulative simulator
// runs (finished jobs and prefetches; cache hits excluded), background
// prefetch activity, and the result cache's traffic and footprint. The
// same numbers back /healthz and the fleet heartbeat, so the registry's
// member table and a direct probe can never disagree about a daemon.
type Stats struct {
	Capacity       int
	Running        int
	UptimeSeconds  float64
	Simulations    int64
	PrefetchActive int
	// Predictors is the comma-joined sorted distinct predictor axis of
	// the running plans ("" when nothing runs), so fleet status tables can
	// show what front end each daemon is simulating right now.
	Predictors string
	// Workloads is the comma-joined sorted distinct trace-workload axis of
	// the running plans ("" when nothing runs or everything is synthetic).
	Workloads string
	// Corpus is the loaded trace corpus as sorted "name@sha256" references
	// (nil without WithWorkloads) — what this daemon can replay, as
	// opposed to Workloads, which is what it is replaying right now.
	Corpus       []string
	CacheEnabled bool
	Cache        vexsmt.CacheStats
	CacheSize    vexsmt.CacheSize
}

// Stats returns the current snapshot (see the Stats type).
func (s *Server) Stats() Stats {
	corpus, _ := s.workloads() // a broken corpus lists as empty; plan admission reports the error
	s.mu.Lock()
	running := s.runningWeightLocked()
	prefetching := len(s.prefetch)
	predictors := s.runningPredictorsLocked()
	workloads := s.runningWorkloadsLocked()
	s.mu.Unlock()
	st := Stats{
		Capacity:       s.capacity(),
		Running:        running,
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Simulations:    s.simulations.Load(),
		PrefetchActive: prefetching,
		Predictors:     predictors,
		Workloads:      workloads,
		Corpus:         corpus,
		CacheEnabled:   s.cache != nil,
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
		if sizer, ok := s.cache.(vexsmt.CacheSizer); ok {
			st.CacheSize = sizer.CacheSize()
		}
	}
	return st
}

// handleHealthz reports liveness plus the numbers a shard coordinator
// needs for placement and failover — how many more plans this server will
// admit (capacity vs running) and the simulation defaults it applies to
// requests that don't override them — and the fleet's sizing signals:
// uptime, cumulative simulations, prefetch activity, and the cache's
// entry/byte footprint. "running" is the committed simulation-worker
// weight, so a coordinator's capacity-running arithmetic yields free
// worker slots (for one-cell plans, weight and plan count coincide).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	body := map[string]any{
		"ok":              true,
		"capacity":        st.Capacity,
		"running":         st.Running,
		"scale":           s.defaults.scale,
		"seed":            s.defaults.seed,
		"schema_version":  vexsmt.SchemaVersion,
		"uptime_seconds":  st.UptimeSeconds,
		"simulations":     st.Simulations,
		"prefetch_active": st.PrefetchActive,
		"predictors":      st.Predictors,
		"workloads":       st.Workloads,
		"corpus":          st.Corpus,
	}
	cacheInfo := map[string]any{"enabled": st.CacheEnabled}
	if st.CacheEnabled {
		cacheInfo["hits"] = st.Cache.Hits
		cacheInfo["misses"] = st.Cache.Misses
		cacheInfo["puts"] = st.Cache.Puts
		cacheInfo["errors"] = st.Cache.Errors
		cacheInfo["peer_hits"] = st.Cache.PeerHits
		cacheInfo["peer_misses"] = st.Cache.PeerMisses
		cacheInfo["entries"] = st.CacheSize.Entries
		cacheInfo["bytes"] = st.CacheSize.Bytes
	}
	body["cache"] = cacheInfo
	writeJSON(w, http.StatusOK, body)
}

// handleCacheGet serves one entry of the local result-cache tier, the
// supply side of fleet peer fill: a daemon that misses locally asks its
// peers here before simulating. The X-Vexsmt-Sha256 header carries the
// payload's digest and clients must verify it, so a torn or corrupted
// response degrades to a peer miss, never a wrong result.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
	if key == "" || strings.ContainsAny(key, "/\\") {
		httpError(w, http.StatusBadRequest, "bad cache key %q", key)
		return
	}
	c := s.exportCache()
	if c == nil {
		httpError(w, http.StatusNotFound, "no result cache on this daemon")
		return
	}
	payload, ok := c.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, "miss")
		return
	}
	sum := sha256.Sum256(payload)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Vexsmt-Sha256", hex.EncodeToString(sum[:]))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// maxActivePrefetch bounds concurrent background warm-up runs; beyond it
// requests shed with 503 + Retry-After, exactly like plan admission.
const maxActivePrefetch = 4

// prefetchRequest is the POST /v1/prefetch body: the cells to warm and
// the seed/scale their keys are addressed under (defaults apply when
// absent, mirroring plan submission).
type prefetchRequest struct {
	Cells []vexsmt.CellSpec `json:"cells"`
	Scale *int64            `json:"scale,omitempty"`
	Seed  *uint64           `json:"seed,omitempty"`
}

// handlePrefetch warms the local result cache with the posted cells in the
// background: each cell is simulated (or peer-filled) once and stored, so
// a sweep scheduled to land later runs against a warm fleet. Prefetch is
// deliberately gentle — single simulation worker, results discarded, no
// admission weight — and best-effort: it returns 202 as soon as the run is
// started, and a daemon death mid-prefetch costs warmth, not correctness.
func (s *Server) handlePrefetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.cache == nil {
		httpError(w, http.StatusBadRequest, "no result cache on this daemon; nothing to warm")
		return
	}
	var req prefetchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad prefetch: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		httpError(w, http.StatusBadRequest, "prefetch names no cells")
		return
	}
	scale, seed := s.defaults.scale, s.defaults.seed
	if req.Scale != nil {
		scale = *req.Scale
	}
	if req.Seed != nil {
		seed = *req.Seed
	}
	// Prefetched cells may name trace workloads; make sure the corpus is
	// resolvable before the cells are validated.
	if _, err := s.workloads(); err != nil {
		httpError(w, http.StatusInternalServerError, "workload corpus %s: %v", s.workloadDir, err)
		return
	}
	svc, err := vexsmt.New(
		vexsmt.WithScale(scale),
		vexsmt.WithSeed(seed),
		vexsmt.WithParallelism(1), // background warming must not starve admitted plans
		vexsmt.WithCache(s.cache),
	)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := svc.Stream(ctx, vexsmt.Plan{Cells: req.Cells})
	if err != nil {
		cancel()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pj := &prefetchJob{cancel: cancel, done: make(chan struct{})}
	s.mu.Lock()
	if len(s.prefetch) >= maxActivePrefetch {
		s.mu.Unlock()
		cancel()
		for range ch {
			// Drain the aborted stream so its worker unwinds.
		}
		w.Header().Set("Retry-After", strconv.Itoa(resilience.RetryAfterHint))
		httpError(w, http.StatusServiceUnavailable, "%d prefetches already warming; retry later", maxActivePrefetch)
		return
	}
	s.nextPre++
	id := s.nextPre
	s.prefetch[id] = pj
	s.mu.Unlock()

	go func() {
		defer close(pj.done)
		defer cancel()
		for range ch {
			// Results are discarded: the side effect — a warm cache — is the
			// point, and failures only cost warmth.
		}
		s.simulations.Add(svc.SimulationsRun())
		s.mu.Lock()
		delete(s.prefetch, id)
		s.mu.Unlock()
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"cells": len(req.Cells),
		"scale": scale,
		"seed":  seed,
	})
}

// CancelJobs cancels every job (plans and background prefetches) and
// waits for their streams to drain — the server half of graceful shutdown.
// Jobs stay registered (terminal, e.g. "cancelled") so watchers attached
// to an NDJSON stream receive a final status line instead of a dropped
// connection; evicting them is left to the normal retention policy.
func (s *Server) CancelJobs() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	pre := make([]*prefetchJob, 0, len(s.prefetch))
	for _, p := range s.prefetch {
		pre = append(pre, p)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	for _, p := range pre {
		p.cancel()
	}
	for _, j := range jobs {
		<-j.done
	}
	for _, p := range pre {
		<-p.done
	}
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submitPlan(w, r)
	case http.MethodGet:
		s.listPlans(w)
	case http.MethodDelete:
		s.cancelPlan(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use POST, GET or DELETE")
	}
}

// submitPlan validates the request, resolves the plan eagerly (so bad
// plans fail with 400, not asynchronously), and starts streaming.
func (s *Server) submitPlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad plan: %v", err)
		return
	}
	// Present overrides — including explicit zeros — go through the option
	// validators, so an invalid value (zero or negative scale, zero
	// parallelism) is a 400, never a silent fallback to the defaults.
	scale, seed, parallelism := s.defaults.scale, s.defaults.seed, s.defaults.parallelism
	if req.Scale != nil {
		scale = *req.Scale
	}
	if req.Seed != nil {
		seed = *req.Seed
	}
	if req.Parallelism != nil {
		parallelism = *req.Parallelism
	}
	opts := []vexsmt.Option{
		vexsmt.WithScale(scale),
		vexsmt.WithSeed(seed),
		vexsmt.WithParallelism(parallelism),
	}
	switch req.Cache {
	case "", "on":
		if s.cache != nil {
			opts = append(opts, vexsmt.WithCache(s.cache))
		}
	case "off":
		// The plan simulates everything afresh and stores nothing.
	default:
		httpError(w, http.StatusBadRequest, "bad cache %q: want on or off", req.Cache)
		return
	}
	// Load the corpus (once per server) before resolving, so a plan naming
	// trace workloads resolves them against the shared store. A corpus that
	// fails to load is this daemon's fault, not the plan's: 500, not 400.
	if _, err := s.workloads(); err != nil {
		httpError(w, http.StatusInternalServerError, "workload corpus %s: %v", s.workloadDir, err)
		return
	}
	svc, err := vexsmt.New(opts...)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells, err := svc.PlanCells(req.Plan)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	total := len(cells)

	ctx, cancel := context.WithCancel(context.Background())
	ch, err := svc.Stream(ctx, req.Plan)
	if err != nil {
		cancel()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission is weighted by worker demand, not plan count: a one-cell
	// plan (the cell-scheduling coordinator's submission pattern) occupies
	// one simulation worker, so a big daemon can run capacity() of them at
	// once, while a full-grid plan's own worker pool is charged in full —
	// the old flat four-plan cap let four grid plans oversubscribe every
	// core 4x. A single plan wider than the whole capacity is clamped so
	// it can still run alone.
	weight := svc.Parallelism()
	if total < weight {
		weight = total
	}
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	cap := s.capacity()
	if weight > cap {
		weight = cap
	}
	if used := s.runningWeightLocked(); used+weight > cap {
		s.mu.Unlock()
		cancel()
		// Admission shedding: overload answers fast with a machine-readable
		// backoff hint instead of queueing work it cannot start — a fleet
		// coordinator treats the 503 as "place elsewhere, come back in a
		// beat" rather than a dead member.
		w.Header().Set("Retry-After", strconv.Itoa(resilience.RetryAfterHint))
		httpError(w, http.StatusServiceUnavailable, "at capacity (%d/%d simulation workers committed); retry later",
			used, cap)
		return
	}
	s.next++
	j := &job{
		id:         "plan-" + strconv.Itoa(s.next),
		num:        s.next,
		meta:       svc.Meta(),
		total:      total,
		predictors: predictorAxis(cells),
		workloads:  workloadAxis(cells),
		weight:     weight,
		created:    time.Now(),
		cancel:     cancel,
		done:       make(chan struct{}),
		status:     "running",
	}
	s.jobs[j.id] = j
	s.evictTerminalLocked()
	s.mu.Unlock()

	// The job's simulator runs roll into the server-wide counter when the
	// stream drains (cache hits excluded), so /healthz "simulations" tells
	// the fleet whether this daemon worked or recalled.
	j.finished = func() { s.simulations.Add(svc.SimulationsRun()) }
	go j.consume(ctx, ch)

	// The id also travels as a header so a client whose body read fails
	// (connection trouble mid-response) can still DELETE the plan instead
	// of orphaning a running job.
	w.Header().Set("X-Vexsmt-Plan-Id", j.id)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":    j.id,
		"cells": total,
		"meta":  j.meta,
	})
}

// consume drains the stream into the job, recording the terminal state.
func (j *job) consume(ctx context.Context, ch <-chan vexsmt.CellResult) {
	defer close(j.done)
	defer j.cancel()
	if j.finished != nil {
		defer j.finished()
	}
	for cell := range ch {
		if cell.Err != "" && ctx.Err() != nil {
			// Cancellation abort, not a simulation failure: the cell never
			// completed (and is un-memoized), so it must not inflate the
			// completed count or masquerade as the job's error.
			continue
		}
		j.mu.Lock()
		j.cells = append(j.cells, cell)
		if cell.Err != "" && j.failed == "" {
			j.failed = fmt.Sprintf("%s/%s/%dT: %s", cell.Mix, cell.Technique, cell.Threads, cell.Err)
		}
		j.mu.Unlock()
	}
	j.mu.Lock()
	switch {
	case ctx.Err() != nil:
		j.status = "cancelled"
	case j.failed != "":
		j.status = "failed"
	default:
		j.status = "done"
	}
	j.mu.Unlock()
}

// snapshot returns the job's current progress and a copy of the cells
// accumulated so far (from offset on).
func (j *job) snapshot(offset int) (status, failed string, total int, cells []vexsmt.CellResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < len(j.cells) {
		cells = append(cells, j.cells[offset:]...)
	}
	return j.status, j.failed, j.total, cells
}

// progress reports status and counts without copying the cell slice —
// the cheap accessor for listings and polling.
func (j *job) progress() (status string, completed, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, len(j.cells), j.total
}

func (s *Server) listPlans(w http.ResponseWriter) {
	s.mu.Lock()
	out := make([]map[string]any, 0, len(s.jobs))
	for _, j := range s.jobs {
		status, completed, total := j.progress()
		out = append(out, map[string]any{
			"id": j.id, "status": status,
			"completed": completed, "cells": total,
			"predictors": j.predictors,
			"workloads":  j.workloads,
			"created":    j.created.UTC().Format(time.RFC3339),
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i]["id"].(string) < out[k]["id"].(string) })
	writeJSON(w, http.StatusOK, map[string]any{"plans": out})
}

// cancelPlan cancels the job, waits for its stream to drain, and evicts
// it — DELETE is both cancel and cleanup, so completed jobs' results do
// not accumulate in the server forever.
func (s *Server) cancelPlan(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	j, ok := s.job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown plan")
		return
	}
	j.cancel()
	<-j.done
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
	status, completed, _ := j.progress()
	writeJSON(w, http.StatusOK, map[string]any{
		"id": j.id, "status": status, "completed": completed,
	})
}

// maxRetainedJobs bounds server memory: beyond this many jobs, the oldest
// terminal (done/failed/cancelled) ones are evicted with their results.
// Running jobs are never evicted — they bound themselves by finishing.
const maxRetainedJobs = 64

// maxRunningJobs is the floor on the admission budget, so small daemons
// (parallelism below 4) still overlap a few plans.
const maxRunningJobs = 4

// capacity is the server's simulation-worker budget, advertised on
// /healthz and charged per plan at admission (see submitPlan): at least
// maxRunningJobs, and at least the default simulation parallelism — the
// cell-scheduling coordinator submits one-cell plans (weight 1), and a
// four-plan budget would idle all but four cores of a big daemon, while
// unbounded admission would oversubscribe the CPU and pin every partial
// result in memory.
func (s *Server) capacity() int {
	if s.defaults.parallelism > maxRunningJobs {
		return s.defaults.parallelism
	}
	return maxRunningJobs
}

// predictorAxis derives the sorted distinct predictor set of a resolved
// plan's cells, in public spelling (a cell's empty predictor is the
// static front end).
func predictorAxis(cells []vexsmt.CellSpec) string {
	seen := make(map[string]bool, 4)
	var names []string
	for _, c := range cells {
		name := c.Predictor
		if name == "" {
			name = "static"
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// runningPredictorsLocked unions the predictor axes of all running jobs,
// sorted distinct and comma-joined. Caller holds s.mu.
func (s *Server) runningPredictorsLocked() string {
	seen := make(map[string]bool, 4)
	var names []string
	for _, j := range s.jobs {
		status, _, _ := j.progress()
		if status != "running" || j.predictors == "" {
			continue
		}
		for _, name := range strings.Split(j.predictors, ",") {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// workloadAxis derives the sorted distinct trace-workload set of a
// resolved plan's cells, as "name@sha256" references. Synthetic cells
// (empty Workload) contribute nothing, so an all-synthetic plan has an
// empty axis.
func workloadAxis(cells []vexsmt.CellSpec) string {
	seen := make(map[string]bool, 4)
	var refs []string
	for _, c := range cells {
		if c.Workload == "" || seen[c.Workload] {
			continue
		}
		seen[c.Workload] = true
		refs = append(refs, c.Workload)
	}
	sort.Strings(refs)
	return strings.Join(refs, ",")
}

// runningWorkloadsLocked unions the workload axes of all running jobs,
// sorted distinct and comma-joined. Caller holds s.mu.
func (s *Server) runningWorkloadsLocked() string {
	seen := make(map[string]bool, 4)
	var refs []string
	for _, j := range s.jobs {
		status, _, _ := j.progress()
		if status != "running" || j.workloads == "" {
			continue
		}
		for _, ref := range strings.Split(j.workloads, ",") {
			if !seen[ref] {
				seen[ref] = true
				refs = append(refs, ref)
			}
		}
	}
	sort.Strings(refs)
	return strings.Join(refs, ",")
}

// runningWeightLocked sums the admission weight of jobs still
// simulating. Caller holds s.mu.
func (s *Server) runningWeightLocked() int {
	n := 0
	for _, j := range s.jobs {
		if status, _, _ := j.progress(); status == "running" {
			n += j.weight
		}
	}
	return n
}

// evictTerminalLocked ages out the oldest terminal jobs while the registry
// exceeds maxRetainedJobs. Caller holds s.mu.
func (s *Server) evictTerminalLocked() {
	for len(s.jobs) > maxRetainedJobs {
		var oldest *job
		for _, j := range s.jobs {
			if status, _, _ := j.progress(); status == "running" {
				continue
			}
			if oldest == nil || j.num < oldest.num {
				oldest = j
			}
		}
		if oldest == nil {
			return // everything still running; nothing evictable
		}
		delete(s.jobs, oldest.id)
	}
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	j, ok := s.job(r.URL.Query().Get("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown plan")
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamResults(w, r, j)
		return
	}
	status, failed, total, cells := j.snapshot(0)
	// The embedded ResultSet keeps the schema contract a downstream merger
	// relies on: successful cells only (failures are reported via status +
	// error, exactly as Collect fails instead of returning a partial set),
	// in the canonical sorted order so equal plans return byte-identical
	// results documents.
	rs := vexsmt.ResultSet{Meta: j.meta}
	for _, c := range cells {
		if c.Err == "" {
			rs.Cells = append(rs.Cells, c)
		}
	}
	rs.Sort()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        j.id,
		"status":    status,
		"error":     failed,
		"completed": len(cells),
		"cells":     total,
		"results":   rs,
	})
}

// streamResults writes NDJSON: every completed cell (including those that
// finished before the watcher connected), live cells as they complete, and
// one terminal status object. Polling the job avoids subscription
// plumbing; 100ms granularity is invisible next to cell runtimes.
func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the status line and headers now: cells can take minutes, and
		// a watcher must be able to tell "running" from "dead" immediately.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	offset := 0
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		status, failed, total, cells := j.snapshot(offset)
		for _, cell := range cells {
			if err := enc.Encode(cell); err != nil {
				return // watcher went away
			}
		}
		offset += len(cells)
		if flusher != nil && len(cells) > 0 {
			flusher.Flush()
		}
		if status != "running" {
			_ = enc.Encode(map[string]any{
				"status": status, "error": failed,
				"completed": offset, "cells": total,
			})
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			// Loop once more to drain the tail and emit the status line.
		case <-tick.C:
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

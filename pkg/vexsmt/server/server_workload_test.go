package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
)

// writeTestCorpus records one synthetic profile as a .vxt trace — the
// corpus a vexsmtd -workload-dir daemon would serve. The trace lands in
// the process-shared workload store when the server loads it, which is
// exactly the production arrangement (content-addressed, load-once).
func writeTestCorpus(t *testing.T, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range names {
		p, ok := synth.ByName(name)
		if !ok {
			t.Fatalf("no synthetic profile %q", name)
		}
		gen := synth.MustNewGenerator(p, isa.ST200x4)
		instrs := trace.Record(gen, 2000)
		f, err := os.Create(filepath.Join(dir, name+".vxt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Write(f, name, isa.ST200x4.Clusters, instrs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestServerWorkloadCorpus(t *testing.T) {
	dir := writeTestCorpus(t, "idct")
	srv := New(20000, 1, 2, WithWorkloads(dir))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// /healthz advertises the loaded corpus as content references — what
	// the daemon heartbeats to the fleet registry.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Corpus []string `json:"corpus"`
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Corpus) != 1 || !strings.HasPrefix(h.Corpus[0], "idct@") {
		t.Fatalf("healthz corpus = %v, want [idct@<hash>]", h.Corpus)
	}

	// A trace-backed plan runs to completion, every cell carrying the full
	// workload reference.
	id := postPlan(t, ts, `{"workloads":["idct"]}`)
	deadline := time.Now().Add(30 * time.Second)
	var res resultsResponse
	for {
		res = getResults(t, ts, id)
		if res.Status == "done" || res.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("plan %s stuck at %s (%d/%d)", id, res.Status, res.Completed, res.Cells)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if res.Status != "done" || res.Error != "" {
		t.Fatalf("plan %s: status %s error %q", id, res.Status, res.Error)
	}
	if len(res.Results.Cells) != 16 { // 8 techniques x {2,4} threads
		t.Fatalf("%d cells, want 16", len(res.Results.Cells))
	}
	for _, c := range res.Results.Cells {
		if c.Mix != "" || !strings.HasPrefix(c.Workload, "idct@") {
			t.Fatalf("cell identity wrong: %+v", c)
		}
	}

	// An unknown workload is the plan's fault: 400, with the corpus named.
	badResp, err := http.Post(ts.URL+"/v1/plans", "application/json",
		strings.NewReader(`{"workloads":["nosuch"]}`))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown workload: status %d, want 400", badResp.StatusCode)
	}
}

func TestServerBadCorpusDirIs500(t *testing.T) {
	// An unreadable corpus is the daemon's misconfiguration, not the
	// client's plan: 500, not 400, and the daemon keeps serving synthetic
	// plans that never touch the corpus.
	srv := New(20000, 1, 2, WithWorkloads(filepath.Join(t.TempDir(), "nope")))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/plans", "application/json",
		strings.NewReader(`{"workloads":["idct"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bad corpus dir: status %d, want 500", resp.StatusCode)
	}
}

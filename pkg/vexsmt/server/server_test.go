package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt"
)

// testServer runs at a tiny scale so plans finish in milliseconds.
func testServer() *httptest.Server {
	return httptest.NewServer(New(20000, 1, 2).Handler())
}

func postPlan(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/plans", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST /v1/plans: %d: %s", resp.StatusCode, buf.String())
	}
	var out struct {
		ID    string         `json:"id"`
		Cells int            `json:"cells"`
		Meta  vexsmt.RunMeta `json:"meta"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Meta.SchemaVersion != vexsmt.SchemaVersion {
		t.Fatalf("plan meta schema version %d, want %d", out.Meta.SchemaVersion, vexsmt.SchemaVersion)
	}
	return out.ID
}

type resultsResponse struct {
	ID        string           `json:"id"`
	Status    string           `json:"status"`
	Error     string           `json:"error"`
	Completed int              `json:"completed"`
	Cells     int              `json:"cells"`
	Results   vexsmt.ResultSet `json:"results"`
}

func getResults(t *testing.T, ts *httptest.Server, id string) resultsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/results?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out resultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSubmitAndCollectResults(t *testing.T) {
	ts := testServer()
	defer ts.Close()

	id := postPlan(t, ts, `{"cells":[
		{"mix":"mmhh","technique":"CSMT","threads":4},
		{"mix":"mmhh","technique":"CCSI AS","threads":4}]}`)

	deadline := time.Now().Add(30 * time.Second)
	var res resultsResponse
	for {
		res = getResults(t, ts, id)
		if res.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("plan still running after 30s: %+v", res)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if res.Status != "done" || res.Error != "" {
		t.Fatalf("terminal state %q (err %q), want done", res.Status, res.Error)
	}
	if res.Completed != 2 || len(res.Results.Cells) != 2 {
		t.Fatalf("completed %d cells (%d in results), want 2", res.Completed, len(res.Results.Cells))
	}
	if res.Results.Meta.SchemaVersion != vexsmt.SchemaVersion {
		t.Fatalf("results schema version %d", res.Results.Meta.SchemaVersion)
	}
	for _, c := range res.Results.Cells {
		if c.IPC <= 0 {
			t.Errorf("%s/%s/%dT: non-positive IPC", c.Mix, c.Technique, c.Threads)
		}
	}
}

func TestStreamingResults(t *testing.T) {
	ts := testServer()
	defer ts.Close()

	id := postPlan(t, ts, `{"cells":[
		{"mix":"llll","technique":"SMT","threads":2},
		{"mix":"mmmm","technique":"SMT","threads":2}]}`)

	resp, err := http.Get(ts.URL + "/v1/results?id=" + id + "&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var cells int
	var status string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if s, ok := line["status"].(string); ok {
			status = s
			break
		}
		cells++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cells != 2 || status != "done" {
		t.Fatalf("streamed %d cells, final status %q; want 2/done", cells, status)
	}
}

func TestCancelPlan(t *testing.T) {
	ts := httptest.NewServer(New(50, 1, 2).Handler()) // slow cells
	defer ts.Close()

	id := postPlan(t, ts, `{"figures":["14","15","16"]}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans?id="+id, nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "cancelled" {
		t.Fatalf("status %q after cancel", out.Status)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer()
	defer ts.Close()

	for _, body := range []string{
		`{"figures":["nonsense"]}`,
		`{"cells":[{"mix":"zzzz","technique":"SMT","threads":2}]}`,
		`{"scale":-4}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/plans", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/results?id=missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown plan: status %d, want 404", resp.StatusCode)
	}
}

func TestSeedZeroOverrideHonored(t *testing.T) {
	ts := testServer()
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/plans", "application/json",
		strings.NewReader(`{"cells":[{"mix":"llll","technique":"SMT","threads":2}],"seed":0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Meta vexsmt.RunMeta `json:"meta"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Meta.Seed != 0 {
		t.Fatalf("explicit seed 0 ran with seed %d", out.Meta.Seed)
	}
}

func TestScaleZeroRejected(t *testing.T) {
	ts := testServer()
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/plans", "application/json",
		strings.NewReader(`{"figures":["14"],"scale":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("explicit scale 0: status %d, want 400", resp.StatusCode)
	}
}

func TestDeleteEvictsJob(t *testing.T) {
	ts := testServer()
	defer ts.Close()

	id := postPlan(t, ts, `{"cells":[{"mix":"llll","technique":"SMT","threads":2}]}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans?id="+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/results?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("results after DELETE: status %d, want 404 (job evicted)", resp.StatusCode)
	}
}

func TestTerminalJobEviction(t *testing.T) {
	ts := testServer()
	defer ts.Close()

	// Submit past the retention cap; the oldest terminal jobs must age out.
	firstID := postPlan(t, ts, `{"cells":[{"mix":"llll","technique":"SMT","threads":2}]}`)
	waitDone := func(id string) {
		deadline := time.Now().Add(30 * time.Second)
		for getResults(t, ts, id).Status == "running" {
			if time.Now().After(deadline) {
				t.Fatalf("%s still running", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitDone(firstID)
	// Submit sequentially (waiting each one out) so the running-jobs cap
	// never rejects a submission; eviction is what's under test here.
	var lastID string
	for i := 0; i < maxRetainedJobs; i++ {
		lastID = postPlan(t, ts, `{"cells":[{"mix":"llll","technique":"SMT","threads":2}]}`)
		waitDone(lastID)
	}

	resp, err := http.Get(ts.URL + "/v1/results?id=" + firstID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("oldest terminal job not evicted past the cap: status %d", resp.StatusCode)
	}
	if got := getResults(t, ts, lastID); got.Status != "done" {
		t.Fatalf("newest job lost: %+v", got)
	}
}

func TestRunningJobsCap(t *testing.T) {
	ts := httptest.NewServer(New(50, 1, 1).Handler()) // slow cells
	defer ts.Close()

	// Fill the admission cap with long-running plans, then expect 503.
	ids := make([]string, 0, maxRunningJobs)
	for i := 0; i < maxRunningJobs; i++ {
		ids = append(ids, postPlan(t, ts, `{"figures":["14"]}`))
	}
	resp, err := http.Post(ts.URL+"/v1/plans", "application/json",
		strings.NewReader(`{"figures":["14"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission over the cap: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("admission shedding without a Retry-After hint")
	}
	// Cancelling one frees capacity.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans?id="+ids[0], nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	postPlan(t, ts, `{"cells":[{"mix":"llll","technique":"SMT","threads":2}]}`)
	for _, id := range ids[1:] {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans?id="+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func TestHealthzReportsPlacementSignals(t *testing.T) {
	ts := httptest.NewServer(New(50, 7, 1).Handler()) // slow cells
	defer ts.Close()

	health := func() (h struct {
		OK            bool    `json:"ok"`
		Capacity      int     `json:"capacity"`
		Running       int     `json:"running"`
		Scale         int64   `json:"scale"`
		Seed          uint64  `json:"seed"`
		SchemaVersion int     `json:"schema_version"`
		Uptime        float64 `json:"uptime_seconds"`
		Cache         struct {
			Enabled bool   `json:"enabled"`
			Entries *int64 `json:"entries"`
			Bytes   *int64 `json:"bytes"`
		} `json:"cache"`
	}) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := health()
	if !h.OK || h.Capacity != maxRunningJobs || h.Running != 0 {
		t.Fatalf("idle healthz: %+v", h)
	}
	if h.Scale != 50 || h.Seed != 7 || h.SchemaVersion != vexsmt.SchemaVersion {
		t.Fatalf("healthz defaults: %+v", h)
	}
	if h.Uptime <= 0 {
		t.Fatalf("healthz uptime_seconds %v, want > 0", h.Uptime)
	}
	// No cache configured: enabled false and no sizing fields at all.
	if h.Cache.Enabled || h.Cache.Entries != nil || h.Cache.Bytes != nil {
		t.Fatalf("cacheless healthz reported cache sizing: %+v", h.Cache)
	}

	id := postPlan(t, ts, `{"figures":["14"]}`)
	if h := health(); h.Running != 1 {
		t.Fatalf("healthz while running: %+v", h)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans?id="+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h := health(); h.Running != 0 {
		t.Fatalf("healthz after cancel: %+v", h)
	}
}

func TestHealthzReportsPredictorAxis(t *testing.T) {
	srv := New(50, 1, 1) // slow cells: the plan is still running when probed
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	predictors := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Predictors string `json:"predictors"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Predictors
	}

	if p := predictors(); p != "" {
		t.Fatalf("idle daemon reports predictor axis %q", p)
	}
	id := postPlan(t, ts, `{"figures":["14"],"predictors":["bimodal","static"]}`)
	if p := predictors(); p != "bimodal,static" {
		t.Fatalf("running predictor axis %q, want \"bimodal,static\"", p)
	}
	if st := srv.Stats(); st.Predictors != "bimodal,static" {
		t.Fatalf("Stats().Predictors = %q", st.Predictors)
	}
	// The plan listing names each job's axis too.
	resp, err := http.Get(ts.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Plans []map[string]any `json:"plans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Plans) != 1 || listing.Plans[0]["predictors"] != "bimodal,static" {
		t.Fatalf("plan listing predictors: %+v", listing.Plans)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans?id="+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if p := predictors(); p != "" {
		t.Fatalf("cancelled daemon still reports predictor axis %q", p)
	}
}

func TestCancelJobsDrainsRunningPlans(t *testing.T) {
	srv := New(50, 1, 1) // slow cells
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := []string{
		postPlan(t, ts, `{"figures":["14"]}`),
		postPlan(t, ts, `{"figures":["15"]}`),
	}
	done := make(chan struct{})
	go func() {
		srv.CancelJobs()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("CancelJobs did not drain within 20s")
	}
	// Jobs stay registered with a terminal status so late watchers see an
	// answer, not a 404.
	for _, id := range ids {
		if res := getResults(t, ts, id); res.Status != "cancelled" && res.Status != "done" {
			t.Fatalf("job %s status %q after CancelJobs", id, res.Status)
		}
	}
}

package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
)

// healthzSnapshot decodes the fleet-facing /healthz fields.
type healthzSnapshot struct {
	OK             bool    `json:"ok"`
	Capacity       int     `json:"capacity"`
	Running        int     `json:"running"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Simulations    int64   `json:"simulations"`
	PrefetchActive int     `json:"prefetch_active"`
	Cache          struct {
		Enabled    bool  `json:"enabled"`
		Hits       int64 `json:"hits"`
		Misses     int64 `json:"misses"`
		Puts       int64 `json:"puts"`
		PeerHits   int64 `json:"peer_hits"`
		PeerMisses int64 `json:"peer_misses"`
		Entries    int64 `json:"entries"`
		Bytes      int64 `json:"bytes"`
	} `json:"cache"`
}

func getHealthz(t *testing.T, ts *httptest.Server) healthzSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthzSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCacheGetServesChecksummedEntries(t *testing.T) {
	mem := cache.NewMemory(0)
	ts := httptest.NewServer(New(20000, 1, 2, WithCache(mem)).Handler())
	defer ts.Close()

	// Run one cell so the cache holds its payload under the canonical key.
	id := postPlan(t, ts, `{"cells":[{"mix":"llll","technique":"SMT","threads":2}]}`)
	if res := waitTerminal(t, ts, id); res.Status != "done" {
		t.Fatalf("plan %s: %+v", id, res)
	}
	meta := vexsmt.RunMeta{SchemaVersion: vexsmt.SchemaVersion, Seed: 1, Scale: 20000}
	key := vexsmt.CacheKey(meta, vexsmt.CellSpec{Mix: "llll", Technique: "SMT", Threads: 2})

	resp, err := http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache get: status %d", resp.StatusCode)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(payload)
	if got := resp.Header.Get("X-Vexsmt-Sha256"); got != hex.EncodeToString(sum[:]) {
		t.Fatalf("checksum header %q does not match payload digest", got)
	}
	// The served bytes are exactly the stored bytes.
	stored, ok := mem.Get(key)
	if !ok || !bytes.Equal(stored, payload) {
		t.Fatalf("served payload differs from stored entry (ok=%v)", ok)
	}

	// Misses and bad keys answer without touching the simulator.
	for path, want := range map[string]int{
		"/v1/cache/" + strings.Repeat("0", 64): http.StatusNotFound,
		"/v1/cache/":                           http.StatusBadRequest,
		"/v1/cache/a/b":                        http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestCacheGetWithoutCacheIs404(t *testing.T) {
	ts := testServer() // no cache configured
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/cache/" + strings.Repeat("a", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestCacheGetServesLocalTierOnly pins the anti-recursion contract: when
// the server's cache is a peer-fill wrapper, /v1/cache must consult the
// wrapped local store, never the peer hook — two cold daemons would
// otherwise bounce a missing key between each other.
func TestCacheGetServesLocalTierOnly(t *testing.T) {
	peerCalls := 0
	pf := cache.WithPeerFill(cache.NewMemory(0), func(string) ([]byte, bool) {
		peerCalls++
		return []byte("from-peer"), true
	})
	ts := httptest.NewServer(New(20000, 1, 2, WithCache(pf)).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cache/" + strings.Repeat("b", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (local tier is cold)", resp.StatusCode)
	}
	if peerCalls != 0 {
		t.Fatalf("peer hook consulted %d times by /v1/cache", peerCalls)
	}
}

func TestPrefetchWarmsCacheInBackground(t *testing.T) {
	mem := cache.NewMemory(0)
	ts := httptest.NewServer(New(20000, 1, 2, WithCache(mem)).Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/prefetch", "application/json",
		strings.NewReader(`{"cells":[{"mix":"llll","technique":"SMT","threads":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prefetch: status %d, want 202", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		h := getHealthz(t, ts)
		if h.PrefetchActive == 0 && h.Simulations > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prefetch never completed: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sz := mem.CacheSize(); sz.Entries != 1 {
		t.Fatalf("cache holds %d entries after prefetch, want 1", sz.Entries)
	}
	// The warm footprint is a placement signal on /healthz.
	if h := getHealthz(t, ts); h.Cache.Entries != 1 || h.Cache.Bytes <= 0 {
		t.Fatalf("healthz cache sizing after prefetch: %+v", h.Cache)
	}

	// A plan landing after the warm-up recalls instead of simulating.
	before := getHealthz(t, ts).Simulations
	id := postPlan(t, ts, `{"cells":[{"mix":"llll","technique":"SMT","threads":2}]}`)
	res := waitTerminal(t, ts, id)
	if res.Status != "done" || len(res.Results.Cells) != 1 {
		t.Fatalf("warm plan: %+v", res)
	}
	if after := getHealthz(t, ts).Simulations; after != before {
		t.Fatalf("warm plan simulated (%d -> %d), want pure cache hits", before, after)
	}
}

func TestPrefetchRejectsBadRequests(t *testing.T) {
	mem := cache.NewMemory(0)
	ts := httptest.NewServer(New(20000, 1, 2, WithCache(mem)).Handler())
	defer ts.Close()
	for body, want := range map[string]int{
		`{"cells":[]}`: http.StatusBadRequest,
		`not json`:     http.StatusBadRequest,
		`{"cells":[{"mix":"zzzz","technique":"SMT","threads":2}]}`: http.StatusBadRequest,
	} {
		resp, err := http.Post(ts.URL+"/v1/prefetch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("prefetch %q: status %d, want %d", body, resp.StatusCode, want)
		}
	}

	// No cache: nothing to warm, and the daemon says so.
	ts2 := testServer()
	defer ts2.Close()
	resp, err := http.Post(ts2.URL+"/v1/prefetch", "application/json",
		strings.NewReader(`{"cells":[{"mix":"llll","technique":"SMT","threads":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cacheless prefetch: status %d, want 400", resp.StatusCode)
	}
}

func TestFleetHandlerMount(t *testing.T) {
	marker := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	ts := httptest.NewServer(New(20000, 1, 2, WithFleet(marker)).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/fleet/members")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("fleet mount: status %d, want the mounted handler's", resp.StatusCode)
	}

	// Without WithFleet the prefix stays unrouted.
	ts2 := testServer()
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/v1/fleet/members")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted fleet prefix: status %d, want 404", resp.StatusCode)
	}
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt/cache"
)

// TestGracefulShutdownDrainsStreamsAndPrefetch exercises the vexsmtd
// shutdown sequence against a server with a running plan, an attached
// NDJSON stream, and a background prefetch in flight: the Shutdown +
// CancelJobs drain loop must end the stream with a terminal status line
// (not a dropped connection), finish within the drain budget, and leave
// no server goroutines behind.
func TestGracefulShutdownDrainsStreamsAndPrefetch(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Scale 500 makes cells slow enough (vs the usual test scale 20000)
	// that the plan and prefetch are still running at shutdown.
	srv := New(500, 1, 2, WithCache(cache.NewMemory(0)))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan struct{})
	go func() { hs.Serve(ln); close(serveDone) }()
	base := "http://" + ln.Addr().String()
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	resp, err := client.Post(base+"/v1/plans", "application/json",
		strings.NewReader(`{"figures":["14"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var plan struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || plan.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, plan.ID)
	}

	pf, err := client.Post(base+"/v1/prefetch", "application/json",
		strings.NewReader(`{"cells":[{"mix":"llll","technique":"SMT","threads":4},{"mix":"hhhh","technique":"SMT","threads":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if pf.StatusCode != http.StatusAccepted {
		var msg strings.Builder
		io.Copy(&msg, pf.Body)
		pf.Body.Close()
		t.Fatalf("prefetch: status %d: %s", pf.StatusCode, msg.String())
	}
	pf.Body.Close()

	// Attach the stream; Get returns once streamResults has pushed
	// headers, so the watcher is wired up before shutdown begins.
	stream, err := client.Get(base + "/v1/results?id=" + plan.ID + "&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	type streamEnd struct {
		last map[string]any
		err  error
	}
	endc := make(chan streamEnd, 1)
	go func() {
		var last map[string]any
		sc := bufio.NewScanner(stream.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			var line map[string]any
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				endc <- streamEnd{nil, err}
				return
			}
			last = line
		}
		endc <- streamEnd{last, sc.Err()}
	}()

	// The vexsmtd drain: Shutdown stops intake and waits for in-flight
	// requests, while CancelJobs runs repeatedly so the NDJSON stream —
	// which only ends at a terminal job state — can drain.
	shctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- hs.Shutdown(shctx) }()
	var drainErr error
	for draining := true; draining; {
		srv.CancelJobs()
		select {
		case drainErr = <-done:
			draining = false
		case <-time.After(50 * time.Millisecond):
		}
	}
	srv.CancelJobs()
	if drainErr != nil {
		t.Fatalf("drain did not complete: %v", drainErr)
	}

	var end streamEnd
	select {
	case end = <-endc:
	case <-time.After(10 * time.Second):
		t.Fatal("stream still open after the drain completed")
	}
	if end.err != nil {
		t.Fatalf("stream ended with a transport error, not a status line: %v", end.err)
	}
	if end.last == nil {
		t.Fatal("stream closed without emitting anything")
	}
	status, _ := end.last["status"].(string)
	if status != "cancelled" && status != "done" {
		t.Fatalf("terminal stream line = %v; want a cancelled/done status object", end.last)
	}
	if _, hasCells := end.last["cells"]; !hasCells {
		t.Fatalf("last stream line %v is not the terminal status object", end.last)
	}

	<-serveDone
	stream.Body.Close()
	tr.CloseIdleConnections()
	// Server goroutines (job consumers, prefetch workers, handlers) must
	// all have unwound; allow a little settling and client-side slack.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d at start, %d after shutdown\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

package vexsmt

import (
	"context"
	"strings"
	"testing"
)

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"scale", WithScale(0)},
		{"parallelism", WithParallelism(0)},
		{"empty techniques", WithTechniques()},
		{"unknown technique", WithTechniques("WAT")},
	}
	for _, tc := range cases {
		if _, err := New(tc.opt); err == nil {
			t.Errorf("%s: invalid option accepted", tc.name)
		}
	}
}

func TestServiceDefaults(t *testing.T) {
	svc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if svc.Scale() != 100 || svc.Seed() != 1 || svc.Parallelism() < 1 {
		t.Fatalf("defaults: scale %d seed %d parallelism %d", svc.Scale(), svc.Seed(), svc.Parallelism())
	}
	if got := svc.TechniqueNames(); len(got) != 8 {
		t.Fatalf("default technique set %v, want all 8", got)
	}
	meta := svc.Meta()
	if meta.SchemaVersion != SchemaVersion || meta.Scale != 100 {
		t.Fatalf("meta %+v", meta)
	}
}

func TestWithTechniquesScopesService(t *testing.T) {
	svc := testService(t, WithTechniques("CSMT", "CCSI AS"))
	ctx := context.Background()

	// A cell outside the set is rejected up front.
	if _, err := svc.RunCell(ctx, CellSpec{Mix: "mmhh", Technique: "SMT", Threads: 2}); err == nil {
		t.Fatal("disabled technique accepted by RunCell")
	}
	// A figure needing a disabled technique fails at resolution, before any
	// simulation runs.
	if _, err := svc.PlanSize(Plan{Figures: []string{"15"}}); err == nil {
		t.Fatal("figure 15 resolved on a CSMT/CCSI-only service")
	} else if !strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("wrong error: %v", err)
	}
	// Every figure entry point enforces the set, not just plan resolution.
	if _, err := svc.Figure14(ctx); err == nil {
		t.Fatal("Figure14 ran on a CSMT/CCSI-AS-only service (needs CCSI NS)")
	}
	if _, err := svc.Figure16(ctx); err == nil {
		t.Fatal("Figure16 ran on a scoped service")
	}
	if _, err := svc.RenderFigure(ctx, "15"); err == nil {
		t.Fatal("RenderFigure(15) ran on a scoped service")
	}
	if _, err := svc.ThreadScaling(ctx, "llll", "OOSI AS", []int{1, 2}); err == nil {
		t.Fatal("ThreadScaling ran a disabled technique")
	}
	// A sweep expands exactly the enabled set: 2 techniques x 9 mixes x {2,4}.
	n, err := svc.PlanSize(Plan{Sweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*9*2 {
		t.Fatalf("sweep planned %d cells, want 36", n)
	}
}

func TestPlanVocabulary(t *testing.T) {
	svc := testService(t)
	if _, err := svc.PlanSize(Plan{Figures: []string{"nonsense"}}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := svc.PlanSize(Plan{Cells: []CellSpec{{Mix: "zzzz", Technique: "SMT", Threads: 2}}}); err == nil {
		t.Fatal("unknown mix accepted")
	}
	if _, err := svc.PlanSize(Plan{Cells: []CellSpec{{Mix: "mmhh", Technique: "SMT", Threads: 99}}}); err == nil {
		t.Fatal("absurd thread count accepted")
	}
	// Figures 14+15+16 dedup to the paper's 144-cell grid.
	n, err := svc.PlanSize(Plan{Figures: []string{"14", "15", "16"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 144 {
		t.Fatalf("full grid plans %d cells, want 144", n)
	}
}

func TestParseFigures(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
		err  bool
	}{
		{"all", "13a,13b,14,15,16", false},
		{"", "13a,13b,14,15,16", false},
		{"14", "14", false},
		{"14,15", "14,15", false},
		{" 14 , 16 ", "14,16", false},
		{"14,14", "14", false},
		{"14,all", "13a,13b,14,15,16", false},
		{"14,bogus", "", true},
		{"all,bogus", "", true},
		{",", "", true},
	} {
		got, err := ParseFigures(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("%q: error expected, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if s := strings.Join(got, ","); s != tc.want {
			t.Errorf("%q: got %q, want %q", tc.in, s, tc.want)
		}
	}
}

func TestAccessorLists(t *testing.T) {
	if got := Techniques(); len(got) != 8 || got[0] != "CSMT" {
		t.Fatalf("Techniques() = %v", got)
	}
	if got := Mixes(); len(got) != 9 || got[0] != "llll" {
		t.Fatalf("Mixes() = %v", got)
	}
	if got := AllFigures(); len(got) != 5 {
		t.Fatalf("AllFigures() = %v", got)
	}
}

func TestRenderFigureSmoke(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	text, err := svc.RenderFigure(ctx, "13b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "llll") {
		t.Fatalf("figure 13b table missing mixes:\n%s", text)
	}
	if _, err := svc.RenderFigure(ctx, "nonsense"); err == nil {
		t.Fatal("unknown figure rendered")
	}
}

func TestThreadScalingPublic(t *testing.T) {
	svc := testService(t)
	points, err := svc.ThreadScaling(context.Background(), "llmh", "SMT", []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if !(points[0].IPC < points[1].IPC && points[1].IPC < points[2].IPC) {
		t.Fatalf("IPC not increasing with threads: %+v", points)
	}
	if _, err := svc.ThreadScaling(context.Background(), "llmh", "WAT", []int{1}); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

// Package vexsmt is the public API of the SMT clustered-VLIW split-issue
// simulator (Gupta, Sánchez and López, IPDPS workshops 2010). It is the
// only supported entry point for external programs: everything under
// internal/ may change without notice, while this package's types map
// one-to-one onto the versioned JSON results schema (SchemaVersion).
//
// A Service wraps the concurrent experiment engine behind functional
// options:
//
//	svc, err := vexsmt.New(
//		vexsmt.WithScale(500),      // 1/500 of paper scale
//		vexsmt.WithSeed(1),
//		vexsmt.WithParallelism(8),
//	)
//
// Work is described by a Plan — named paper figures, explicit cells, or a
// sweep of the service's technique set — and executed either as a blocking
// batch (Collect) or as a stream that yields each cell the moment its
// simulation completes:
//
//	results, err := svc.Stream(ctx, vexsmt.Plan{Figures: []string{"14"}})
//	for cell := range results {
//		fmt.Printf("%s/%s/%dT  IPC %.3f\n",
//			cell.Mix, cell.Technique, cell.Threads, cell.IPC)
//	}
//
// Cancellation and determinism contract: cancelling ctx stops the stream
// within one simulated timeslice and leaks no workers, and any result the
// stream does deliver is bit-identical to the one a serial run would have
// produced — cells derive their random streams from workload identity
// alone, never from scheduling.
package vexsmt

package vexsmt

import (
	"context"
	"strings"
	"testing"
)

// This file tests the branch-predictor experiment axis: list parsing, the
// WithPredictors service scope, plan crossing, result identity (the
// Predictor field in cells, sort order, merge keys), cache addressing, and
// the static byte-identity contract at the JSON layer.

func TestParsePredictors(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
		err  bool
	}{
		{"", "static", false},
		{"static", "static", false},
		{"bimodal", "bimodal", false},
		{" TAGE ", "tage", false},
		{"static,bimodal", "static,bimodal", false},
		{"bimodal,bimodal", "bimodal", false},
		{"all", "static,bimodal,gshare,tage", false},
		{"bimodal,all", "static,bimodal,gshare,tage", false},
		{"perceptron", "", true},
		{"bimodal,perceptron", "", true},
		{"all,perceptron", "", true},
		{",", "", true},
	} {
		got, err := ParsePredictors(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("%q: error expected, got %v", tc.in, got)
			} else if tc.in != "," && !strings.Contains(err.Error(), "static, bimodal, gshare, tage") {
				// "," fails as an empty list, which has no model to name.
				t.Errorf("%q: error does not list the models: %v", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if s := strings.Join(got, ","); s != tc.want {
			t.Errorf("%q: got %q, want %q", tc.in, s, tc.want)
		}
	}
}

func TestWithPredictorsValidation(t *testing.T) {
	if _, err := New(WithPredictors()); err == nil {
		t.Error("empty WithPredictors accepted")
	}
	if _, err := New(WithPredictors("perceptron")); err == nil {
		t.Error("unknown predictor accepted by WithPredictors")
	}
	if got := Predictors(); strings.Join(got, ",") != "static,bimodal,gshare,tage" {
		t.Errorf("Predictors() = %v", got)
	}
}

func TestWithPredictorsScopesService(t *testing.T) {
	svc := testService(t, WithPredictors("static"))
	// A plan crossing the grid with a disabled model fails at resolution.
	if _, err := svc.PlanSize(Plan{Figures: []string{"14"}, Predictors: []string{"bimodal"}}); err == nil {
		t.Fatal("disabled predictor accepted via Plan.Predictors")
	} else if !strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("wrong error: %v", err)
	}
	// An explicit cell naming a disabled model fails the same way.
	if _, err := svc.PlanSize(Plan{Cells: []CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2, Predictor: "gshare"},
	}}); err == nil {
		t.Fatal("disabled predictor accepted via CellSpec")
	}
	// The default static grid is unaffected by the restriction.
	if _, err := svc.PlanSize(Plan{Figures: []string{"14"}}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorAxisCrossesGrid(t *testing.T) {
	svc := testService(t)
	base, err := svc.PlanSize(Plan{Figures: []string{"14"}})
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Figures: []string{"14"}, Predictors: []string{"static", "bimodal"}}
	cells, err := svc.PlanCells(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*base {
		t.Fatalf("crossed plan has %d cells, want %d", len(cells), 2*base)
	}
	// Predictor-major order: one model's full grid before the next begins,
	// with static spelled "" in the public specs.
	for i, c := range cells {
		want := ""
		if i >= base {
			want = "bimodal"
		}
		if c.Predictor != want {
			t.Fatalf("cell %d predictor %q, want %q", i, c.Predictor, want)
		}
	}
	// Explicit cells are never crossed: they carry their own Predictor.
	cells, err = svc.PlanCells(Plan{
		Cells:      []CellSpec{{Mix: "llll", Technique: "SMT", Threads: 2, Predictor: "gshare"}},
		Predictors: []string{"bimodal"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Predictor != "gshare" {
		t.Fatalf("explicit cell was crossed: %+v", cells)
	}
	// "static" in a spec canonicalizes to the empty internal spelling.
	cells, err = svc.PlanCells(Plan{Cells: []CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2, Predictor: "static"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Predictor != "" {
		t.Fatalf("static spec kept spelling %q, want \"\"", cells[0].Predictor)
	}
}

func TestPredictorCellResultsShareSeeds(t *testing.T) {
	svc := testService(t)
	rs, err := svc.Collect(context.Background(), Plan{Cells: []CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2},
		{Mix: "llll", Technique: "SMT", Threads: 2, Predictor: "bimodal"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(rs.Cells))
	}
	var static, bimodal CellResult
	for _, c := range rs.Cells {
		if c.Predictor == "" {
			static = c
		} else {
			bimodal = c
		}
	}
	if static.Counters.Branches != 0 || static.Counters.BranchMispredicts != 0 {
		t.Fatalf("static cell counted branches: %+v", static.Counters)
	}
	if bimodal.Predictor != "bimodal" || bimodal.Counters.Branches == 0 {
		t.Fatalf("bimodal cell missing predictor identity or branches: %+v", bimodal)
	}
	if bimodal.Counters.BranchMispredicts >= bimodal.Counters.Branches {
		t.Fatalf("bimodal mispredicted everything: %+v", bimodal.Counters)
	}
	// Common-random-numbers pairing: the predictor axis reuses the cell
	// seed, so static-vs-modeled comparisons see identical instruction
	// streams.
	if static.Seed == 0 || static.Seed != bimodal.Seed {
		t.Fatalf("predictor variants have unpaired seeds: %x vs %x", static.Seed, bimodal.Seed)
	}
}

// TestStaticExportOmitsPredictorFields is the JSON half of the static
// byte-identity contract: a static-only export must not mention the
// predictor axis at all — no "predictor", no branch counters — so it
// diffs clean against documents written before the axis existed.
func TestStaticExportOmitsPredictorFields(t *testing.T) {
	svc := testService(t)
	rs, err := svc.Collect(context.Background(), Plan{Cells: []CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	doc := encodeCanonical(t, rs)
	for _, field := range []string{"predictor", "branches", "branch_mispredicts"} {
		if strings.Contains(doc, field) {
			t.Errorf("static export mentions %q:\n%s", field, doc)
		}
	}
}

func TestSortPredictorTiebreak(t *testing.T) {
	rs := &ResultSet{Cells: []CellResult{
		{Mix: "llll", Technique: "SMT", Threads: 2, Predictor: "gshare"},
		{Mix: "llll", Technique: "SMT", Threads: 2, Predictor: "bimodal"},
		{Mix: "llll", Technique: "SMT", Threads: 2},
		{Mix: "llll", Technique: "SMT", Threads: 4},
	}}
	rs.Sort()
	got := make([]string, len(rs.Cells))
	for i, c := range rs.Cells {
		got[i] = c.Predictor
	}
	// Static ("") first within a thread count; threads dominate predictor.
	want := []string{"", "bimodal", "gshare", ""}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted predictors %q, want %q", got, want)
		}
	}
}

func TestMergeDistinguishesPredictorCells(t *testing.T) {
	svc := testService(t)
	cell := CellSpec{Mix: "llll", Technique: "SMT", Threads: 2}
	static, err := svc.Collect(context.Background(), Plan{Cells: []CellSpec{cell}})
	if err != nil {
		t.Fatal(err)
	}
	cell.Predictor = "bimodal"
	modeled, err := svc.Collect(context.Background(), Plan{Cells: []CellSpec{cell}})
	if err != nil {
		t.Fatal(err)
	}
	// Same (mix, technique, threads) under two predictors: distinct cells,
	// not a conflict.
	merged, err := static.Merge(modeled)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Cells) != 2 {
		t.Fatalf("merged %d cells, want 2", len(merged.Cells))
	}
	// A genuine conflict on a modeled cell names the predictor.
	conflicting := &ResultSet{Meta: modeled.Meta, Cells: append([]CellResult(nil), modeled.Cells...)}
	conflicting.Cells[0].IPC++
	if _, err := modeled.Merge(conflicting); err == nil {
		t.Fatal("conflicting modeled duplicates accepted")
	} else if !strings.Contains(err.Error(), "bimodal") {
		t.Fatalf("conflict error does not name the predictor: %v", err)
	}
}

func TestCacheKeyPredictorAddressing(t *testing.T) {
	meta := RunMeta{SchemaVersion: SchemaVersion, Seed: 1, Scale: 100}
	spec := CellSpec{Mix: "llll", Technique: "SMT", Threads: 2}
	base := CacheKey(meta, spec)
	spec.Predictor = "static"
	if CacheKey(meta, spec) != base {
		t.Error("\"static\" and \"\" address different cache entries")
	}
	spec.Predictor = "bimodal"
	if CacheKey(meta, spec) == base {
		t.Error("bimodal shares the static cache entry")
	}
}
